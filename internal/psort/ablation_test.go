package psort

import (
	"math/rand"
	"testing"

	"repro/internal/vmpi"
)

// TestSampledSplittersSortCorrectly: the ablation variant still sorts.
func TestSampledSplittersSortCorrectly(t *testing.T) {
	for _, p := range []int{2, 4, 7} {
		in := randomInput(p, 40, int64(p)+500)
		out := runSort(t, in, func(c *vmpi.Comm, items []rec) []rec {
			return SortPartitionSampled(c, items, recKey)
		})
		checkGloballySorted(t, in, out)
	}
}

// TestExactSplittingPreventsLoadDrift reproduces the design-choice ablation
// of DESIGN.md: repeatedly re-sorting slowly changing data. With sampled
// splitters the per-rank load random-walks away from balance; with exact
// splitting it stays pinned to ±(key multiplicity).
func TestExactSplittingPreventsLoadDrift(t *testing.T) {
	const p = 8
	const perRank = 250
	const steps = 40

	makeInput := func() [][]rec {
		rng := rand.New(rand.NewSource(77))
		in := make([][]rec, p)
		id := int64(0)
		for r := range in {
			in[r] = make([]rec, perRank)
			for i := range in[r] {
				in[r][i] = rec{Key: uint64(rng.Intn(1 << 16)), Val: id}
				id++
			}
		}
		return in
	}

	// drift runs `steps` rounds of (perturb keys slightly, re-sort) and
	// returns the maximum rank load observed in the final round.
	drift := func(sorter func(c *vmpi.Comm, items []rec) []rec) int {
		in := makeInput()
		st := vmpi.Run(vmpi.Config{Ranks: p}, func(c *vmpi.Comm) {
			items := append([]rec(nil), in[c.Rank()]...)
			rng := rand.New(rand.NewSource(int64(c.Rank())))
			for s := 0; s < steps; s++ {
				for i := range items {
					// Small random walk of the keys (particles moving).
					items[i].Key = uint64(int64(items[i].Key) + int64(rng.Intn(65)) - 32)
				}
				items = sorter(c, items)
			}
			c.SetResult(len(items))
		})
		maxLoad := 0
		for _, v := range st.Values {
			if n := v.(int); n > maxLoad {
				maxLoad = n
			}
		}
		return maxLoad
	}

	exact := drift(func(c *vmpi.Comm, items []rec) []rec {
		return SortPartition(c, items, recKey)
	})
	sampled := drift(func(c *vmpi.Comm, items []rec) []rec {
		return SortPartitionSampled(c, items, recKey)
	})

	// Exact splitting keeps loads tight around the average.
	if exact > perRank*11/10 {
		t.Errorf("exact splitting: max load %d drifted beyond 10%% of %d", exact, perRank)
	}
	// And it must be at least as balanced as sampling (usually strictly
	// better; sampling random-walks).
	if exact > sampled {
		t.Errorf("exact splitting (max %d) should not be worse than sampling (max %d)", exact, sampled)
	}
	t.Logf("final max load: exact=%d sampled=%d (average %d)", exact, sampled, perRank)
}

// BenchmarkSortDriftRegimes compares the three sorting strategies across
// movement magnitudes, the ablation for the paper's §III-B sort-switch
// heuristic: partition sort is insensitive to presortedness, merge sort is
// dramatically cheaper for small movement and worse for large.
func BenchmarkSortDriftRegimes(b *testing.B) {
	const p = 8
	const perRank = 300
	for _, bench := range []struct {
		name string
		move int // key perturbation magnitude per step
	}{
		{"almost-sorted", 4},
		{"medium-drift", 512},
		{"shuffled", 1 << 15},
	} {
		for _, sorter := range []struct {
			name string
			f    func(c *vmpi.Comm, items []rec) []rec
		}{
			{"partition", func(c *vmpi.Comm, items []rec) []rec { return SortPartition(c, items, recKey) }},
			{"merge", func(c *vmpi.Comm, items []rec) []rec { return SortMerge(c, items, recKey) }},
		} {
			b.Run(bench.name+"/"+sorter.name, func(b *testing.B) {
				var virt float64
				var bytes int64
				for i := 0; i < b.N; i++ {
					st := vmpi.Run(vmpi.Config{Ranks: p}, func(c *vmpi.Comm) {
						rng := rand.New(rand.NewSource(int64(c.Rank())))
						items := make([]rec, perRank)
						base := uint64(c.Rank()) << 20
						for j := range items {
							items[j] = rec{Key: base + uint64(j)<<4}
						}
						// Perturb from the sorted baseline by the regime's
						// movement magnitude.
						for j := range items {
							items[j].Key = uint64(int64(items[j].Key) + int64(rng.Intn(2*bench.move+1)) - int64(bench.move))
						}
						sorter.f(c, items)
					})
					virt = st.MaxClock()
					bytes = st.TotalBytes()
				}
				b.ReportMetric(virt, "vsec/sort")
				b.ReportMetric(float64(bytes), "bytes/total")
			})
		}
	}
}

func TestSortPartitionAllEqualKeys(t *testing.T) {
	// All particles in one box: keys cannot be split, so one rank ends up
	// owning everything (box-granularity decomposition); the sort must
	// stay correct and not hang in the splitter bisection.
	const p = 4
	in := make([][]rec, p)
	id := int64(0)
	for r := range in {
		in[r] = make([]rec, 25)
		for i := range in[r] {
			in[r][i] = rec{Key: 42, Val: id}
			id++
		}
	}
	out := runSort(t, in, func(c *vmpi.Comm, items []rec) []rec {
		return SortPartition(c, items, recKey)
	})
	checkGloballySorted(t, in, out)
}

func TestSortMergeAllEqualKeys(t *testing.T) {
	const p = 4
	in := make([][]rec, p)
	id := int64(0)
	for r := range in {
		in[r] = make([]rec, 10+r)
		for i := range in[r] {
			in[r][i] = rec{Key: 7, Val: id}
			id++
		}
	}
	out := runSort(t, in, func(c *vmpi.Comm, items []rec) []rec {
		return SortMerge(c, items, recKey)
	})
	checkGloballySorted(t, in, out)
	// Merge-split preserves counts even with all-equal keys.
	for r := range in {
		if len(out[r]) != len(in[r]) {
			t.Errorf("rank %d count %d -> %d", r, len(in[r]), len(out[r]))
		}
	}
}

func TestSortPartitionMaxKeys(t *testing.T) {
	// Keys at the top of the uint64 range must not overflow the bisection
	// bounds (hi = max+1).
	const p = 3
	in := make([][]rec, p)
	for r := range in {
		in[r] = []rec{{Key: ^uint64(0), Val: int64(r)}, {Key: ^uint64(0) - 1, Val: int64(r + 10)}}
	}
	out := runSort(t, in, func(c *vmpi.Comm, items []rec) []rec {
		return SortPartition(c, items, recKey)
	})
	checkGloballySorted(t, in, out)
}
