package psort

import (
	"testing"
)

// TestSharedScheduleSingleBuild16384 is the large-P smoke for the shared
// collective schedules: at the benchmark's top rank count the partitioned
// merge-exchange table and the cleanup chain must be derived once per
// process and then served to every rank without allocating. Before the
// cache, each of the 16384 ranks materialised the full ~1.8M-comparator
// schedule per sort; a regression here reintroduces gigabytes of garbage
// at the big end of Figure 10.
func TestSharedScheduleSingleBuild16384(t *testing.T) {
	const n = 16384

	// First lookup builds the table (or finds it already built by an
	// earlier sort in this process — the cache is per-process by design).
	first := rankSchedule(n, 0)
	if len(first) == 0 {
		t.Fatalf("rank 0 of %d has an empty merge schedule", n)
	}

	// Every later lookup, from any rank, is an allocation-free read...
	allocs := testing.AllocsPerRun(8, func() {
		for _, r := range []int{0, 1, n / 2, n - 1} {
			if len(rankSchedule(n, r)) == 0 {
				panic("empty schedule")
			}
		}
	})
	if allocs != 0 {
		t.Errorf("rankSchedule lookups allocated %.2f objects per run, want 0 (table rebuilt?)", allocs)
	}
	// ...of the one shared table: the same backing array every time.
	a, b := rankSchedule(n, 7), rankSchedule(n, 7)
	if &a[0] != &b[0] {
		t.Errorf("rankSchedule(16384, 7) returned distinct backing arrays; table not shared")
	}

	// The cleanup chain behaves the same: one derivation per counts
	// vector, shared across all ranks, compared by content so the fresh
	// (equal) counts slice every sort produces does not rebuild it.
	counts := make([]int64, n)
	for i := range counts {
		counts[i] = int64(i % 3) // empty ranks included
	}
	chain1, _, total1 := sharedChain(n, counts, 3)
	counts2 := append([]int64(nil), counts...)
	allocs = testing.AllocsPerRun(8, func() {
		sharedChain(n, counts2, n/2)
	})
	if allocs != 0 {
		t.Errorf("sharedChain lookups allocated %.2f objects per run, want 0 (chain rebuilt?)", allocs)
	}
	chain2, myIdx, total2 := sharedChain(n, counts2, 4)
	if &chain1[0] != &chain2[0] {
		t.Errorf("sharedChain returned distinct backing arrays for equal counts; chain not shared")
	}
	if total1 != total2 {
		t.Errorf("sharedChain totals disagree: %d vs %d", total1, total2)
	}
	if chain2[myIdx] != 4 {
		t.Errorf("rank 4 resolved to chain position %d holding rank %d", myIdx, chain2[myIdx])
	}
	if _, idx, _ := sharedChain(n, counts2, 3*(n/3)); idx != -1 {
		t.Errorf("empty rank resolved to chain position %d, want -1", idx)
	}
}
