package psort

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/vmpi"
)

// rec is a key+payload element used across the tests.
type rec struct {
	Key uint64
	Val int64
}

func recKey(r rec) uint64 { return r.Key }

// runSort distributes items[r] to rank r, runs the given sort, and returns
// each rank's output.
func runSort(t *testing.T, items [][]rec, f func(c *vmpi.Comm, in []rec) []rec) [][]rec {
	t.Helper()
	st := vmpi.Run(vmpi.Config{Ranks: len(items)}, func(c *vmpi.Comm) {
		in := append([]rec(nil), items[c.Rank()]...)
		c.SetResult(f(c, in))
	})
	out := make([][]rec, len(items))
	for r, v := range st.Values {
		out[r] = v.([]rec)
	}
	return out
}

// checkGloballySorted verifies the concatenation of out is sorted and is a
// permutation of the multiset of in.
func checkGloballySorted(t *testing.T, in, out [][]rec) {
	t.Helper()
	var flatIn, flatOut []rec
	for _, b := range in {
		flatIn = append(flatIn, b...)
	}
	for _, b := range out {
		flatOut = append(flatOut, b...)
	}
	if len(flatIn) != len(flatOut) {
		t.Fatalf("element count changed: %d -> %d", len(flatIn), len(flatOut))
	}
	for i := 1; i < len(flatOut); i++ {
		if flatOut[i-1].Key > flatOut[i].Key {
			t.Fatalf("global order violated at %d: %d > %d", i, flatOut[i-1].Key, flatOut[i].Key)
		}
	}
	// Multiset equality via sorted copies (including payloads).
	less := func(a, b rec) bool {
		if a.Key != b.Key {
			return a.Key < b.Key
		}
		return a.Val < b.Val
	}
	sort.Slice(flatIn, func(i, j int) bool { return less(flatIn[i], flatIn[j]) })
	cp := append([]rec(nil), flatOut...)
	sort.Slice(cp, func(i, j int) bool { return less(cp[i], cp[j]) })
	for i := range flatIn {
		if flatIn[i] != cp[i] {
			t.Fatalf("multiset changed at %d: %v vs %v", i, flatIn[i], cp[i])
		}
	}
}

func randomInput(p, perRank int, seed int64) [][]rec {
	rng := rand.New(rand.NewSource(seed))
	items := make([][]rec, p)
	id := int64(0)
	for r := range items {
		n := perRank
		if perRank > 3 {
			n = perRank/2 + rng.Intn(perRank) // unequal counts
		}
		items[r] = make([]rec, n)
		for i := range items[r] {
			items[r][i] = rec{Key: uint64(rng.Intn(perRank * p * 4)), Val: id}
			id++
		}
	}
	return items
}

func TestLocalSort(t *testing.T) {
	items := []rec{{5, 0}, {1, 1}, {5, 2}, {0, 3}}
	LocalSort(nil, items, recKey)
	want := []rec{{0, 3}, {1, 1}, {5, 0}, {5, 2}} // stable for equal keys
	for i := range want {
		if items[i] != want[i] {
			t.Fatalf("LocalSort = %v", items)
		}
	}
	if !IsSorted(items, recKey) {
		t.Error("IsSorted(sorted) = false")
	}
	if IsSorted([]rec{{2, 0}, {1, 0}}, recKey) {
		t.Error("IsSorted(unsorted) = true")
	}
}

func TestSortPartitionBasic(t *testing.T) {
	for _, p := range []int{1, 2, 4, 7} {
		in := randomInput(p, 40, int64(p))
		out := runSort(t, in, func(c *vmpi.Comm, items []rec) []rec {
			return SortPartition(c, items, recKey)
		})
		checkGloballySorted(t, in, out)
	}
}

func TestSortPartitionBalance(t *testing.T) {
	const p = 8
	const perRank = 200
	in := make([][]rec, p)
	rng := rand.New(rand.NewSource(3))
	for r := range in {
		in[r] = make([]rec, perRank)
		for i := range in[r] {
			in[r][i] = rec{Key: rng.Uint64() >> 20}
		}
	}
	out := runSort(t, in, func(c *vmpi.Comm, items []rec) []rec {
		return SortPartition(c, items, recKey)
	})
	checkGloballySorted(t, in, out)
	for r, b := range out {
		if len(b) < perRank/4 || len(b) > perRank*4 {
			t.Errorf("rank %d holds %d elements, average %d: poor balance", r, len(b), perRank)
		}
	}
}

func TestSortPartitionAllOnOneRank(t *testing.T) {
	// The paper's "single process" initial distribution: everything on
	// rank 0 must still sort and spread across ranks.
	const p = 4
	in := make([][]rec, p)
	rng := rand.New(rand.NewSource(5))
	in[0] = make([]rec, 400)
	for i := range in[0] {
		in[0][i] = rec{Key: uint64(rng.Intn(1 << 30)), Val: int64(i)}
	}
	out := runSort(t, in, func(c *vmpi.Comm, items []rec) []rec {
		return SortPartition(c, items, recKey)
	})
	checkGloballySorted(t, in, out)
	moved := 0
	for r := 1; r < p; r++ {
		moved += len(out[r])
	}
	if moved == 0 {
		t.Error("partition sort left all elements on rank 0")
	}
}

func TestSortPartitionDuplicateKeys(t *testing.T) {
	const p = 4
	in := make([][]rec, p)
	for r := range in {
		in[r] = make([]rec, 50)
		for i := range in[r] {
			in[r][i] = rec{Key: uint64(i % 3), Val: int64(r*100 + i)}
		}
	}
	out := runSort(t, in, func(c *vmpi.Comm, items []rec) []rec {
		return SortPartition(c, items, recKey)
	})
	checkGloballySorted(t, in, out)
}

func TestSortMergeBasic(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 5, 8} {
		in := randomInput(p, 30, int64(p)+100)
		out := runSort(t, in, func(c *vmpi.Comm, items []rec) []rec {
			return SortMerge(c, items, recKey)
		})
		checkGloballySorted(t, in, out)
		// Counts preserved per rank.
		for r := range in {
			if len(out[r]) != len(in[r]) {
				t.Errorf("p=%d rank %d: count %d -> %d", p, r, len(in[r]), len(out[r]))
			}
		}
	}
}

func TestSortMergeEmptyRanks(t *testing.T) {
	const p = 4
	in := make([][]rec, p)
	in[1] = []rec{{9, 0}, {1, 1}, {5, 2}}
	in[3] = []rec{{2, 3}, {8, 4}}
	out := runSort(t, in, func(c *vmpi.Comm, items []rec) []rec {
		return SortMerge(c, items, recKey)
	})
	checkGloballySorted(t, in, out)
	for r := range in {
		if len(out[r]) != len(in[r]) {
			t.Errorf("rank %d count changed %d -> %d", r, len(in[r]), len(out[r]))
		}
	}
}

func TestSortMergeSkewedCounts(t *testing.T) {
	// Highly unequal counts stress the unequal-block correctness of the
	// merge-exchange network plus cleanup.
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		p := 2 + rng.Intn(7)
		in := make([][]rec, p)
		id := int64(0)
		for r := range in {
			n := rng.Intn(30)
			if rng.Intn(3) == 0 {
				n = 0
			}
			in[r] = make([]rec, n)
			for i := range in[r] {
				in[r][i] = rec{Key: uint64(rng.Intn(50)), Val: id}
				id++
			}
		}
		out := runSort(t, in, func(c *vmpi.Comm, items []rec) []rec {
			return SortMerge(c, items, recKey)
		})
		checkGloballySorted(t, in, out)
	}
}

func TestSortMergeAlmostSortedMovesLittleData(t *testing.T) {
	// For almost sorted input, the merge-based sort must move far less
	// data than the partition sort — the paper's motivation (§III-B).
	const p = 8
	const perRank = 200
	mkInput := func() [][]rec {
		rng := rand.New(rand.NewSource(17))
		in := make([][]rec, p)
		key := uint64(0)
		for r := range in {
			in[r] = make([]rec, perRank)
			for i := range in[r] {
				key += uint64(rng.Intn(5))
				in[r][i] = rec{Key: key, Val: int64(r*perRank + i)}
			}
		}
		// Perturb a few keys slightly (particles moved a little).
		for k := 0; k < 10; k++ {
			r := rng.Intn(p)
			i := rng.Intn(perRank)
			in[r][i].Key += uint64(rng.Intn(7))
		}
		return in
	}
	in := mkInput()
	var mergeBytes, partBytes int64
	stM := vmpi.Run(vmpi.Config{Ranks: p}, func(c *vmpi.Comm) {
		items := append([]rec(nil), in[c.Rank()]...)
		c.SetResult(SortMerge(c, items, recKey))
	})
	mergeBytes = stM.TotalBytes()
	stP := vmpi.Run(vmpi.Config{Ranks: p}, func(c *vmpi.Comm) {
		items := append([]rec(nil), in[c.Rank()]...)
		c.SetResult(SortPartition(c, items, recKey))
	})
	partBytes = stP.TotalBytes()
	if mergeBytes >= partBytes {
		t.Errorf("almost sorted: merge sort moved %d bytes, partition %d; expected merge << partition",
			mergeBytes, partBytes)
	}
	// And the outputs are correctly sorted.
	outM := make([][]rec, p)
	for r, v := range stM.Values {
		outM[r] = v.([]rec)
	}
	checkGloballySorted(t, in, outM)
}

func TestSortsAgreeOnKeys(t *testing.T) {
	// Both sorts must produce the same global key sequence.
	const p = 6
	in := randomInput(p, 50, 23)
	outP := runSort(t, in, func(c *vmpi.Comm, items []rec) []rec {
		return SortPartition(c, items, recKey)
	})
	outM := runSort(t, in, func(c *vmpi.Comm, items []rec) []rec {
		return SortMerge(c, items, recKey)
	})
	var keysP, keysM []uint64
	for r := 0; r < p; r++ {
		for _, e := range outP[r] {
			keysP = append(keysP, e.Key)
		}
		for _, e := range outM[r] {
			keysM = append(keysM, e.Key)
		}
	}
	if len(keysP) != len(keysM) {
		t.Fatalf("length mismatch %d vs %d", len(keysP), len(keysM))
	}
	for i := range keysP {
		if keysP[i] != keysM[i] {
			t.Fatalf("key sequence differs at %d: %d vs %d", i, keysP[i], keysM[i])
		}
	}
}

func TestSortDeterminism(t *testing.T) {
	const p = 5
	in := randomInput(p, 60, 31)
	a := runSort(t, in, func(c *vmpi.Comm, items []rec) []rec {
		return SortPartition(c, items, recKey)
	})
	b := runSort(t, in, func(c *vmpi.Comm, items []rec) []rec {
		return SortPartition(c, items, recKey)
	})
	for r := range a {
		if len(a[r]) != len(b[r]) {
			t.Fatalf("rank %d nondeterministic count", r)
		}
		for i := range a[r] {
			if a[r][i] != b[r][i] {
				t.Fatalf("rank %d nondeterministic element %d", r, i)
			}
		}
	}
}

func TestMergeExchangeScheduleSortsIntegers(t *testing.T) {
	// The comparator schedule must be a valid sorting network: check by
	// sorting random permutations element-wise.
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 9, 16, 31} {
		sched := MergeExchangeSchedule(n)
		for trial := 0; trial < 50; trial++ {
			v := rng.Perm(n)
			for _, ce := range sched {
				if v[ce.I] > v[ce.J] {
					v[ce.I], v[ce.J] = v[ce.J], v[ce.I]
				}
			}
			if !sort.IntsAreSorted(v) {
				t.Fatalf("n=%d: network failed to sort", n)
			}
		}
	}
}

func TestMergeExchangeSchedule01Principle(t *testing.T) {
	// Exhaustive 0-1 principle check for small n: a network sorting all
	// 0-1 inputs sorts everything.
	for n := 1; n <= 12; n++ {
		sched := MergeExchangeSchedule(n)
		for mask := 0; mask < 1<<n; mask++ {
			v := make([]int, n)
			for i := range v {
				v[i] = (mask >> i) & 1
			}
			for _, ce := range sched {
				if v[ce.I] > v[ce.J] {
					v[ce.I], v[ce.J] = v[ce.J], v[ce.I]
				}
			}
			if !sort.IntsAreSorted(v) {
				t.Fatalf("n=%d mask=%b: 0-1 input not sorted", n, mask)
			}
		}
	}
}

func TestMergeExchangeComparatorsValid(t *testing.T) {
	f := func(n uint8) bool {
		m := int(n)%30 + 1
		for _, ce := range MergeExchangeSchedule(m) {
			if ce.I < 0 || ce.J >= m || ce.I >= ce.J {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSortPartitionProperty(t *testing.T) {
	// Property-based: arbitrary key sets remain a sorted permutation.
	f := func(keys []uint16, pRaw uint8) bool {
		p := int(pRaw)%4 + 1
		in := make([][]rec, p)
		for i, k := range keys {
			r := i % p
			in[r] = append(in[r], rec{Key: uint64(k), Val: int64(i)})
		}
		st := vmpi.Run(vmpi.Config{Ranks: p}, func(c *vmpi.Comm) {
			items := append([]rec(nil), in[c.Rank()]...)
			c.SetResult(SortPartition(c, items, recKey))
		})
		var flat []rec
		for _, v := range st.Values {
			flat = append(flat, v.([]rec)...)
		}
		if len(flat) != len(keys) {
			return false
		}
		for i := 1; i < len(flat); i++ {
			if flat[i-1].Key > flat[i].Key {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
