package psort

import (
	"sort"
	"unsafe"

	"repro/internal/costs"
	"repro/internal/redist"
	"repro/internal/vmpi"
)

// SortRotational globally sorts items across the ranks of c with the
// rotational nearly-sort: the same exact splitters as SortPartition
// choose every element's destination rank, but instead of one all-to-all
// that stages p send buffers simultaneously, elements travel through
// ceil(log2 p) fixed rounds of single point-to-point ring rotations.
// Round k rotates by dist = 2^k: every element whose remaining ring
// offset (destination minus current rank, mod p) has bit k set is packed
// into one outgoing buffer for rank+dist, and the binary decomposition of
// the offsets delivers every element after the last round. Peak send
// staging is therefore one buffer per round — never p — which makes the
// strategy memory-bounded by construction; it pays for that with log p
// message latencies and elements traveling multiple hops (the rotational
// fixed-size redistribution of particle-filter resamplers, applied as a
// sort strategy; cf. ROADMAP item 3).
//
// The final distribution is exactly SortPartition's splitter partition —
// balanced up to key multiplicities — and the arrival sequence on each
// rank is a small number of sorted runs, so the closing LocalSort pays
// the adaptive almost-sorted cost. Duplicate keys may be permuted
// differently than by the other strategies; the result is nonetheless
// deterministic on both engines.
//
// When the communicator has a memory budget configured, the per-round
// staged peak is reported on the redist.MeterPeakBytes gauge/counter like
// any planned exchange.
func SortRotational[T any](c *vmpi.Comm, items []T, key func(T) uint64) []T {
	p := c.Size()
	LocalSort(c, items, key)
	if p == 1 {
		return items
	}
	splitters := exactSplitters(c, items, key)
	self := c.Rank()

	cur := items
	var send []T
	peak := int64(0)
	elem := int64(unsafe.Sizeof(*new(T)))
	for dist := 1; dist < p; dist <<= 1 {
		// Split cur into the elements rotating this round and the rest,
		// preserving relative order. The keep side compacts cur in place
		// behind the scan; movers are copied out first.
		send = send[:0]
		keep := cur[:0]
		for _, e := range cur {
			off := destRank(key(e), splitters) - self
			if off < 0 {
				off += p
			}
			if off&dist != 0 {
				send = append(send, e)
			} else {
				keep = append(keep, e)
			}
		}
		got := vmpi.Sendrecv(c, send, (self+dist)%p, (self-dist+p)%p, tagRot)
		c.Compute(costs.Move*float64(len(keep)) + costs.RedistElem*float64(len(send)+len(got)))
		cur = append(keep, got...)
		vmpi.Release(got)
		if staged := int64(len(send)) * elem; staged > peak {
			peak = staged
		}
	}

	LocalSort(c, cur, key)
	if c.MaxExchangeBytes() > 0 {
		c.Gauge(redist.MeterPeakBytes, float64(peak))
		c.Counter(redist.MeterPeakBytes, float64(peak))
	}
	return cur
}

// destRank returns the destination rank of a key under the splitter
// partition: the first rank r with key < splitters[r], else the last
// rank. This is the per-element form of SortPartition's contiguous
// partition rule, so both strategies produce the same distribution.
func destRank(key uint64, splitters []uint64) int {
	return sort.Search(len(splitters), func(r int) bool { return key < splitters[r] })
}
