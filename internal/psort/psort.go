// Package psort provides the two parallel sorting methods the paper's FMM
// solver switches between (§III-A, §III-B):
//
//   - SortPartition: a partition-based parallel sort (paper reference [12]).
//     Ranks sort locally, agree on p-1 key splitters, exchange elements with
//     a collective all-to-all, and merge. The output is globally sorted and
//     approximately balanced, but every rank may communicate with every
//     other rank.
//   - SortMerge: a merge-based parallel sort (references [15], [16]). Ranks
//     sort locally, then perform pairwise merge-split steps following
//     Batcher's merge-exchange sorting network, using point-to-point
//     communication only. Per-rank element counts are preserved. For almost
//     sorted inputs — the common case when particles move only slightly per
//     time step — most pairs detect from a small header exchange that no
//     data needs to move, so the network's data volume collapses.
//
// Both sorts order elements by a uint64 key extracted with a caller-supplied
// function and are deterministic, including for duplicate keys.
package psort

import (
	"sort"
	"sync"

	"repro/internal/costs"
	"repro/internal/redist"
	"repro/internal/vmpi"
)

// Tags used by SortMerge header/count/data exchanges and the rotational
// sort's per-round rotations.
const (
	tagHeader = 101
	tagData   = 102
	tagCount  = 103
	tagRot    = 104
)

// keyedSorter sorts items and their extracted keys together, so the
// comparator reads cached keys instead of re-extracting them O(n log n)
// times. Stability (and therefore the permutation for duplicate keys) is
// identical to stably sorting items with a key-extracting comparator.
type keyedSorter[T any] struct {
	items []T
	keys  []uint64
}

func (s *keyedSorter[T]) Len() int           { return len(s.items) }
func (s *keyedSorter[T]) Less(i, j int) bool { return s.keys[i] < s.keys[j] }
func (s *keyedSorter[T]) Swap(i, j int) {
	s.items[i], s.items[j] = s.items[j], s.items[i]
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
}

// LocalSort stably sorts items by key and charges the cost of an adaptive
// merge sort to the rank's virtual clock if c is non-nil: almost sorted
// inputs — the method B steady state — cost little more than a scan, as
// with the merge-based local sorting of the paper's sorting library
// (reference [15]). Keys are extracted once during the sortedness scan and
// cached for the sort.
func LocalSort[T any](c *vmpi.Comm, items []T, key func(T) uint64) {
	keys := make([]uint64, len(items))
	breaks := 0
	for i := range items {
		keys[i] = key(items[i])
		if i > 0 && keys[i-1] > keys[i] {
			breaks++
		}
	}
	if breaks > 0 {
		sort.Stable(&keyedSorter[T]{items: items, keys: keys})
	}
	if c != nil {
		c.Compute(costs.AdaptiveSortTime(len(items), breaks))
	}
}

// IsSorted reports whether items are locally non-decreasing in key.
func IsSorted[T any](items []T, key func(T) uint64) bool {
	for i := 1; i < len(items); i++ {
		if key(items[i-1]) > key(items[i]) {
			return false
		}
	}
	return true
}

// SortPartition globally sorts items across the ranks of c: after the call,
// every rank holds a locally sorted slice and all keys on rank r are <= all
// keys on rank r+1. Splitters are determined by exact splitting — a
// collective bisection over the key space that balances element counts up
// to key multiplicities (the partitioning algorithm of paper reference
// [12]) — so the distribution cannot drift over repeated sorts. Element
// exchange uses a collective all-to-all.
func SortPartition[T any](c *vmpi.Comm, items []T, key func(T) uint64) []T {
	p := c.Size()
	LocalSort(c, items, key)
	if p == 1 {
		return items
	}
	splitters := exactSplitters(c, items, key)

	// Partition the local run: elements with key < splitters[r] (binary
	// search) go to rank r.
	parts := make([][]T, p)
	lo := 0
	for r := 0; r < p; r++ {
		hi := len(items)
		if r < len(splitters) {
			s := splitters[r]
			hi = lo + sort.Search(len(items)-lo, func(i int) bool { return key(items[lo+i]) >= s })
		}
		parts[r] = items[lo:hi]
		lo = hi
	}
	c.Compute(exchangeCost(c.Rank(), parts)) // pack into send buffers

	// Plan-backed block exchange: the copying collective when no memory
	// budget is configured, bounded rounds under one.
	recv := redist.ExchangeBlocks(c, parts)

	// Merge the received sorted runs. Received blocks are in source-rank
	// order; a stable sort keeps ties deterministic.
	merged := make([]T, 0, totalLen(recv))
	for _, b := range recv {
		merged = append(merged, b...)
	}
	sort.SliceStable(merged, func(i, j int) bool { return key(merged[i]) < key(merged[j]) })
	c.Compute(exchangeCost(c.Rank(), recv) + costs.MergeTime(len(merged), p))
	vmpi.ReleaseBlocks(recv)
	return merged
}

// exchangeCost prices element transfer: elements crossing ranks pay the
// fine-grained redistribution handling cost, local ones a memory move.
func exchangeCost[T any](self int, parts [][]T) float64 {
	cost := 0.0
	for r, b := range parts {
		if r == self {
			cost += costs.Move * float64(len(b))
		} else {
			cost += costs.RedistElem * float64(len(b))
		}
	}
	return cost
}

// exactSplitters finds p-1 splitter keys such that the number of elements
// with key < splitter[i] equals the target prefix count (i+1)*total/p, up
// to key multiplicities, via a collective bisection over the key value
// space. All splitters are searched simultaneously: one small allreduce
// per bisection round.
func exactSplitters[T any](c *vmpi.Comm, items []T, key func(T) uint64) []uint64 {
	p := c.Size()
	n := len(items)
	// Global bounds and total count.
	locMin, locMax := ^uint64(0), uint64(0)
	if n > 0 {
		locMin = key(items[0])
		locMax = key(items[n-1])
	}
	agg := vmpi.Allreduce(c, []uint64{^locMin, locMax}, vmpi.Max[uint64])
	globalMin := ^agg[0]
	globalMax := agg[1]
	total := int64(vmpi.AllreduceVal(c, uint64(n), vmpi.Sum[uint64]))
	if total == 0 {
		return make([]uint64, p-1)
	}
	lo := make([]uint64, p-1)
	hi := make([]uint64, p-1)
	targets := make([]int64, p-1)
	for i := range lo {
		lo[i] = globalMin
		hi[i] = globalMax + 1
		targets[i] = int64(i+1) * total / int64(p)
	}
	counts := make([]int64, p-1)
	for {
		done := true
		for i := range lo {
			if lo[i] < hi[i] {
				done = false
			}
		}
		if done {
			break
		}
		for i := range lo {
			mid := lo[i] + (hi[i]-lo[i])/2
			counts[i] = int64(sort.Search(n, func(j int) bool { return key(items[j]) >= mid }))
		}
		c.Compute(costs.Compare * float64(p) * 32)
		global := vmpi.Allreduce(c, counts, vmpi.Sum[int64])
		for i := range lo {
			if lo[i] >= hi[i] {
				continue
			}
			mid := lo[i] + (hi[i]-lo[i])/2
			if global[i] < targets[i] {
				lo[i] = mid + 1
			} else {
				hi[i] = mid
			}
		}
	}
	return lo
}

// SortMerge globally sorts items across the ranks of c with Batcher's
// merge-exchange network of pairwise merge-split steps. Per-rank element
// counts are preserved: rank r ends with exactly as many elements as it
// started with. Before each pairwise data exchange, the pair trades a small
// header (count, min, max); if the pair is already ordered, the element
// exchange is skipped entirely — the property that makes this method cheap
// for almost sorted data.
func SortMerge[T any](c *vmpi.Comm, items []T, key func(T) uint64) []T {
	p := c.Size()
	LocalSort(c, items, key)
	if p == 1 {
		return items
	}
	me := c.Rank()
	// spare ping-pongs with items through the merge-split rounds, so the
	// whole network reuses two buffers instead of allocating per round.
	var spare []T
	for _, st := range rankSchedule(p, me) {
		items, spare = mergeSplit(c, items, key, st.partner, st.keepLow, spare)
	}
	// Batcher's network provably sorts equal-size blocks; with unequal
	// per-rank counts (and in particular with empty ranks, through which no
	// element can flow because merge-split preserves counts) residual
	// inversions are possible. Clean up with odd-even block transposition
	// rounds over the chain of non-empty ranks until the global boundary
	// check passes — for almost sorted inputs typically zero rounds.
	//
	// Every rank derives the identical chain from the identical counts
	// vector, so the chain table is shared per network size (sharedChain)
	// instead of materialized P times, and the counts buffer goes back to
	// the message pool immediately.
	counts := vmpi.Allgather(c, []int64{int64(len(items))})
	nonEmpty, myIdx, total := sharedChain(p, counts, c.Rank())
	vmpi.Release(counts)
	// Each pair of rounds fixes at least one boundary inversion, but a
	// low-capacity rank in the middle of the chain throttles element flow
	// to its capacity per two rounds, so the worst-case round count is
	// bounded by the total element count, not the chain length. Almost
	// sorted inputs — the method's intended regime — need zero or very few
	// rounds.
	even := true
	for round := int64(0); !globallySorted(c, items, key); round++ {
		if round > 2*total+8 {
			panic("psort: odd-even cleanup failed to converge")
		}
		items, spare = oddEvenRound(c, items, key, nonEmpty, myIdx, even, spare)
		even = !even
	}
	return items
}

// globallySorted checks (collectively) that every rank is locally sorted
// and rank boundaries are non-decreasing, skipping empty ranks.
func globallySorted[T any](c *vmpi.Comm, items []T, key func(T) uint64) bool {
	h := header{Count: int64(len(items))}
	if len(items) > 0 {
		h.Min = key(items[0])
		h.Max = key(items[len(items)-1])
	}
	all := vmpi.Allgather(c, []header{h})
	sorted := true
	prevMax := uint64(0)
	have := false
	for _, e := range all {
		if e.Count == 0 {
			continue
		}
		if have && e.Min < prevMax {
			sorted = false
			break
		}
		prevMax = e.Max
		have = true
	}
	vmpi.Release(all)
	return sorted
}

// oddEvenRound performs one block transposition round over the chain of
// non-empty ranks: adjacent chain pairs starting at even or odd chain
// positions merge-split. myIdx is the calling rank's position in the chain,
// or -1 if it is empty (and therefore idle).
func oddEvenRound[T any](c *vmpi.Comm, items []T, key func(T) uint64, chain []int, myIdx int, even bool, spare []T) ([]T, []T) {
	if myIdx < 0 {
		return items, spare
	}
	start := 0
	if !even {
		start = 1
	}
	off := myIdx - start
	if off >= 0 && off%2 == 0 && myIdx+1 < len(chain) {
		return mergeSplit(c, items, key, chain[myIdx+1], true, spare)
	}
	if off >= 1 && off%2 == 1 {
		return mergeSplit(c, items, key, chain[myIdx-1], false, spare)
	}
	return items, spare
}

// header describes one side of a merge-split pair.
type header struct {
	Count    int64
	Min, Max uint64
}

// mergeSplit performs one comparator step with partner. keepLow selects
// whether this rank keeps the lower (comparator input i) or upper (input j)
// part of the merged sequence. The local count is preserved. spare is a
// reusable merge buffer: the returned pair is (new items, new spare), with
// the buffers swapped when an exchange happened, so repeated rounds recycle
// the same two allocations.
//
// The exchange is count-negotiated: at most t = min(k_i, k_j) elements can
// change sides, where k_i is the number of i's elements above j's minimum
// and k_j the number of j's elements below i's maximum (every element that
// enters the low side displaces a larger one, and vice versa). Each side
// therefore sends only its t boundary elements. Almost sorted data — even
// with a few Z-curve stragglers that jumped across the whole key range —
// exchanges only those few elements, the property the paper's merge-based
// sorting exploits (§III-B).
func mergeSplit[T any](c *vmpi.Comm, items []T, key func(T) uint64, partner int, keepLow bool, spare []T) ([]T, []T) {
	h := header{Count: int64(len(items))}
	if len(items) > 0 {
		h.Min = key(items[0])
		h.Max = key(items[len(items)-1])
	}
	// Value messages: wire-identical to one-element slices (same bytes,
	// tags, order — virtual time unchanged) with zero payload allocation.
	ph := vmpi.SendrecvVal(c, h, partner, partner, tagHeader)

	// Skip the data exchange when the pair is already ordered or one side
	// is empty.
	if h.Count == 0 || ph.Count == 0 {
		return items, spare
	}
	if keepLow && h.Max <= ph.Min {
		return items, spare
	}
	if !keepLow && ph.Max <= h.Min {
		return items, spare
	}

	n := len(items)
	// Negotiate the exchange size t = min(k_low, k_high).
	var k int
	if keepLow {
		cut := sort.Search(n, func(i int) bool { return key(items[i]) > ph.Min })
		k = n - cut // my elements above the partner's minimum
	} else {
		k = sort.Search(n, func(i int) bool { return key(items[i]) >= ph.Max })
	}
	pk := int(vmpi.SendrecvVal(c, int64(k), partner, partner, tagCount))
	t := k
	if pk < t {
		t = pk
	}
	if t == 0 {
		return items, spare
	}

	if keepLow {
		// Send my t largest; receive the partner's t smallest. Only these
		// candidates can change sides.
		theirLow := vmpi.Sendrecv(c, items[n-t:], partner, partner, tagData)
		c.Compute(costs.RedistElem * float64(2*t))
		// Keep the n smallest of (mine ∪ their candidates); ties keep the
		// lower comparator input (me) first.
		out := spare[:0]
		if cap(out) < n {
			out = make([]T, 0, n)
		}
		li, hi := 0, 0
		for len(out) < n {
			if li < n && (hi >= len(theirLow) || key(items[li]) <= key(theirLow[hi])) {
				out = append(out, items[li])
				li++
			} else {
				out = append(out, theirLow[hi])
				hi++
			}
		}
		c.Compute(costs.MergeTime(len(out), 2))
		vmpi.Release(theirLow)
		return out, items
	}
	// Upper side: send my t smallest; receive the partner's t largest.
	theirHigh := vmpi.Sendrecv(c, items[:t], partner, partner, tagData)
	c.Compute(costs.RedistElem * float64(2*t))
	// Keep the n largest of (their candidates ∪ mine); the merged order
	// puts the lower input (partner) first on ties, and we take the last n.
	total := len(theirHigh) + n
	merged := spare[:0]
	if cap(merged) < total {
		merged = make([]T, 0, total)
	}
	li, hi := 0, 0
	for li < len(theirHigh) || hi < n {
		if li < len(theirHigh) && (hi >= n || key(theirHigh[li]) <= key(items[hi])) {
			merged = append(merged, theirHigh[li])
			li++
		} else {
			merged = append(merged, items[hi])
			hi++
		}
	}
	c.Compute(costs.MergeTime(len(merged), 2))
	vmpi.Release(theirHigh)
	copy(items, merged[total-n:])
	return items, merged[:0]
}

// rankStep is one comparator step of the merge-exchange network as seen by
// a single rank: exchange with partner, keeping the low (comparator input
// I) or high (input J) half.
type rankStep struct {
	partner int
	keepLow bool
}

// mergeSchedMu guards mergeSchedByP: per network size p, the full
// comparator sequence partitioned into per-rank step lists (preserving
// each rank's step order exactly, so the message sequence — and therefore
// virtual time — is identical to scanning the full schedule).
//
// Without the cache, every rank of every SortMerge call materialises the
// whole ~(p/2)·log²p comparator list only to use its own ~log²p entries: at
// p = 16384 that is ~14 MB of garbage per rank per sort, which dwarfs the
// sort itself. The partitioned schedule is computed once per p for the
// process lifetime.
var (
	mergeSchedMu  sync.Mutex
	mergeSchedByP = map[int][][]rankStep{}
)

// chainEntry caches one network size's cleanup-chain derivation: the
// counts vector it was derived from, the chain of non-empty ranks, and the
// total element count.
type chainEntry struct {
	counts []int64
	chain  []int
	total  int64
}

var (
	chainMu  sync.Mutex
	chainByP = map[int]*chainEntry{}
)

// sharedChain returns the chain of non-empty ranks for a counts vector,
// the calling rank's position in it (-1 when the rank is empty), and the
// total element count. The chain is a pure function of counts, and every
// rank of a P-rank sort holds the identical counts vector (it came out of
// an allgather), so one cached chain per network size serves all P ranks —
// and, for steady workloads, all subsequent sorts — instead of P fresh
// derivations per sort. The returned chain is shared and must be treated
// as read-only.
func sharedChain(p int, counts []int64, me int) (chain []int, myIdx int, total int64) {
	chainMu.Lock()
	e := chainByP[p]
	if e == nil || !int64sEqual(e.counts, counts) {
		ch := make([]int, 0, p)
		var tot int64
		for r, n := range counts {
			if n > 0 {
				ch = append(ch, r)
			}
			tot += n
		}
		e = &chainEntry{counts: append([]int64(nil), counts...), chain: ch, total: tot}
		chainByP[p] = e
	}
	chainMu.Unlock()
	// The chain lists ranks in ascending order; binary-search my position.
	myIdx = sort.SearchInts(e.chain, me)
	if myIdx >= len(e.chain) || e.chain[myIdx] != me {
		myIdx = -1
	}
	return e.chain, myIdx, e.total
}

func int64sEqual(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i, v := range a {
		if v != b[i] {
			return false
		}
	}
	return true
}

// rankSchedule returns rank r's comparator steps for an n-input
// merge-exchange network, in network order.
func rankSchedule(n, r int) []rankStep {
	mergeSchedMu.Lock()
	defer mergeSchedMu.Unlock()
	sched, ok := mergeSchedByP[n]
	if !ok {
		sched = make([][]rankStep, n)
		for _, ce := range MergeExchangeSchedule(n) {
			sched[ce.I] = append(sched[ce.I], rankStep{partner: ce.J, keepLow: true})
			sched[ce.J] = append(sched[ce.J], rankStep{partner: ce.I, keepLow: false})
		}
		mergeSchedByP[n] = sched
	}
	return sched[r]
}

// CE is one comparator of a sorting network: compare-exchange between
// network inputs I < J.
type CE struct{ I, J int }

// MergeExchangeSchedule returns the comparator sequence of Batcher's
// merge-exchange sorting network for n inputs (Knuth, TAOCP vol. 3,
// Algorithm 5.2.2M). Comparators are emitted in pass order; comparators
// within one (p,q,r,d) group touch disjoint input pairs and may proceed
// concurrently.
func MergeExchangeSchedule(n int) []CE {
	var out []CE
	if n < 2 {
		return out
	}
	t := 0
	for 1<<t < n {
		t++
	}
	for p := 1 << (t - 1); p > 0; p >>= 1 {
		q := 1 << (t - 1)
		r := 0
		d := p
		for {
			for i := 0; i < n-d; i++ {
				if i&p == r {
					out = append(out, CE{I: i, J: i + d})
				}
			}
			if q == p {
				break
			}
			d = q - p
			q >>= 1
			r = p
		}
	}
	return out
}

func totalLen[T any](blocks [][]T) int {
	n := 0
	for _, b := range blocks {
		n += len(b)
	}
	return n
}

// SortPartitionSampled is SortPartition with splitters chosen by regular
// sampling of the locally sorted runs (p samples per rank) instead of exact
// splitting. It is kept as an ablation of the design choice discussed in
// DESIGN.md: sampling is cheaper per sort (no bisection rounds) but its
// splitters depend on the current layout, so repeated sorts of slowly
// changing data let the per-rank loads drift — exactly the pathology the
// exact splitting of reference [12] avoids.
func SortPartitionSampled[T any](c *vmpi.Comm, items []T, key func(T) uint64) []T {
	p := c.Size()
	LocalSort(c, items, key)
	if p == 1 {
		return items
	}
	samples := make([]uint64, 0, p)
	for i := 0; i < p && len(items) > 0; i++ {
		idx := (i*len(items) + len(items)/2) / p
		if idx >= len(items) {
			idx = len(items) - 1
		}
		samples = append(samples, key(items[idx]))
	}
	all := vmpi.Allgather(c, samples)
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	c.Compute(costs.SortTime(len(all)))
	splitters := make([]uint64, 0, p-1)
	for i := 1; i < p; i++ {
		if len(all) == 0 {
			break
		}
		idx := i * len(all) / p
		if idx >= len(all) {
			idx = len(all) - 1
		}
		splitters = append(splitters, all[idx])
	}
	parts := make([][]T, p)
	lo := 0
	for r := 0; r < p; r++ {
		hi := len(items)
		if r < len(splitters) {
			s := splitters[r]
			hi = lo + sort.Search(len(items)-lo, func(i int) bool { return key(items[lo+i]) >= s })
		}
		parts[r] = items[lo:hi]
		lo = hi
	}
	c.Compute(exchangeCost(c.Rank(), parts))
	recv := redist.ExchangeBlocks(c, parts)
	merged := make([]T, 0, totalLen(recv))
	for _, b := range recv {
		merged = append(merged, b...)
	}
	sort.SliceStable(merged, func(i, j int) bool { return key(merged[i]) < key(merged[j]) })
	c.Compute(exchangeCost(c.Rank(), recv) + costs.MergeTime(len(merged), p))
	vmpi.ReleaseBlocks(recv)
	return merged
}
