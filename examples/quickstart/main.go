// Quickstart: compute the Coulomb potentials and fields of a small ionic
// system with the coupling library, following the fcs call sequence of the
// paper's §II-A: Init (with options) → Tune → Run → Destroy.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/particle"
	"repro/internal/vmpi"
)

func main() {
	// A melting-silica-like ionic system at the paper's density.
	system := particle.SilicaMelt(1000, 26.6, true, 1)
	fmt.Printf("system: %d ions in a %.4g^3 periodic box\n", system.N, system.Box.Lengths()[0])

	// Run on a virtual machine of 4 MPI ranks.
	st := vmpi.Run(vmpi.Config{Ranks: 4}, func(c *vmpi.Comm) {
		// Each rank takes its share (here: a uniformly random distribution).
		local := particle.Distribute(c, system, particle.DistRandom, 7)

		// fcs_init: create a solver instance ("fmm" and "p2nfft" are
		// available), configured with functional options — the box
		// (fcs_set_common) and the requested accuracy are validated here.
		handle, err := core.Init("p2nfft", c,
			core.WithBox(system.Box),
			core.WithAccuracy(1e-3),
		)
		if err != nil {
			log.Fatal(err)
		}
		defer handle.Destroy()

		// fcs_tune: optional tuning with the current particles.
		if err := handle.Tune(local.N, local.ActivePos(), local.ActiveQ()); err != nil {
			log.Fatal(err)
		}

		// fcs_run: compute potentials and fields.
		n := local.N
		if err := handle.Run(&n, local.Cap, local.Pos, local.Q, local.Pot, local.Field); err != nil {
			log.Fatal(err)
		}

		// The electrostatic energy is ½ Σ qᵢφᵢ; reduce it globally.
		u := 0.0
		for i := 0; i < n; i++ {
			u += 0.5 * local.Q[i] * local.Pot[i]
		}
		total := vmpi.AllreduceVal(c, u, vmpi.Sum[float64])
		if c.Rank() == 0 {
			c.SetResult(total)
		}
	})

	fmt.Printf("electrostatic energy: %.6f\n", st.Values[0].(float64))
	fmt.Printf("virtual runtime: %.3g s on 4 ranks\n", st.MaxClock())
}
