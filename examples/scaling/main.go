// scaling: a strong-scaling sweep of the particle dynamics simulation over
// rank counts, on both machine models — a miniature of the paper's Fig. 9 (random initial distribution, so method A
// pays the full restore every step).
// Method B with the maximum-movement optimization is compared against
// method A at each scale.
//
// Run with: go run ./examples/scaling
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/mdsim"
	"repro/internal/netmodel"
	"repro/internal/particle"
	"repro/internal/vmpi"
)

func main() {
	const steps = 8
	system := particle.SilicaMelt(4096, 42.5, true, 42)
	particle.Thermalize(system, 2.0, 44)
	fmt.Printf("scaling: %d ions, %d MD steps, solver p2nfft\n\n", system.N, steps)

	machines := []struct {
		name  string
		model func(ranks int) netmodel.Model
		scale float64
	}{
		{"switched (JuRoPA-like)", func(int) netmodel.Model { return netmodel.NewSwitched() }, 1.0},
		{"torus (Juqueen-like)", func(r int) netmodel.Model { return netmodel.NewTorus(r) }, 2.5},
	}
	for _, m := range machines {
		fmt.Printf("%s:\n%-8s %14s %14s %14s %10s\n", m.name,
			"ranks", "method A", "method B+move", "B/A", "speedup(B)")
		var base float64
		for _, ranks := range []int{1, 2, 4, 8, 16} {
			a := run(system, ranks, steps, false, false, m.model(ranks), m.scale)
			b := run(system, ranks, steps, true, true, m.model(ranks), m.scale)
			if ranks == 1 {
				base = b
			}
			fmt.Printf("%-8d %14.4g %14.4g %13.0f%% %9.2fx\n",
				ranks, a, b, 100*b/a, base/b)
		}
		fmt.Println()
	}
}

// run executes the MD loop and returns the total virtual runtime.
func run(system *particle.System, ranks, steps int, resort, track bool,
	model netmodel.Model, scale float64) float64 {
	st := vmpi.Run(vmpi.Config{Ranks: ranks, Model: model, ComputeScale: scale}, func(c *vmpi.Comm) {
		local := particle.Distribute(c, system, particle.DistRandom, 7)
		handle, err := core.Init("p2nfft", c,
			core.WithBox(system.Box),
			core.WithAccuracy(1e-3),
			core.WithResort(resort),
		)
		if err != nil {
			log.Fatal(err)
		}
		defer handle.Destroy()
		sim := mdsim.New(c, handle, local, 0.01)
		sim.TrackMovement = track
		if err := sim.Init(); err != nil {
			log.Fatal(err)
		}
		for i := 0; i < steps; i++ {
			if err := sim.Step(); err != nil {
				log.Fatal(err)
			}
		}
	})
	return st.MaxClock()
}
