// resort-indices: demonstrates the coupling currency of method B — the
// 64-bit resort indices (rank<<32 | position) that solvers create so an
// application can adapt its own per-particle data to the solver's changed
// particle order and distribution (paper §III-B, Fig. 5).
//
// Each particle is tagged with a custom payload (here its global id and a
// synthetic "age"); after a solver run with resorting enabled, the payload
// is moved with ResortInts/ResortFloats and shown to still line up with the
// particle positions.
//
// Run with: go run ./examples/resort-indices
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/particle"
	"repro/internal/vmpi"
)

func main() {
	system := particle.SilicaMelt(512, 21.3, true, 5)
	fmt.Printf("resort-indices: %d ions on 4 ranks\n", system.N)

	st := vmpi.Run(vmpi.Config{Ranks: 4}, func(c *vmpi.Comm) {
		local := particle.Distribute(c, system, particle.DistRandom, 3)

		// Application-specific additional data the solver knows nothing
		// about: a global id and an "age" per particle.
		ids := make([]int64, local.N)
		age := make([]float64, local.N)
		for i := 0; i < local.N; i++ {
			ids[i] = globalID(system, local.Pos[3*i], local.Pos[3*i+1], local.Pos[3*i+2])
			age[i] = float64(ids[i]) * 0.5
		}

		handle, err := core.Init("fmm", c,
			core.WithBox(system.Box),
			core.WithAccuracy(1e-2),
			core.WithResort(true),
		)
		if err != nil {
			log.Fatal(err)
		}
		defer handle.Destroy()
		if err := handle.Tune(local.N, local.ActivePos(), local.ActiveQ()); err != nil {
			log.Fatal(err)
		}
		n := local.N
		if err := handle.Run(&n, local.Cap, local.Pos, local.Q, local.Pot, local.Field); err != nil {
			log.Fatal(err)
		}
		if !handle.ResortAvailable() {
			log.Fatal("expected the changed particle order")
		}

		// Move the application data into the solver's order.
		movedIDs, err := handle.ResortInts(ids, 1)
		if err != nil {
			log.Fatal(err)
		}
		movedAge, err := handle.ResortFloats(age, 1)
		if err != nil {
			log.Fatal(err)
		}

		// Verify: the id at each new position matches the particle there.
		mismatches := 0
		for i := 0; i < n; i++ {
			want := globalID(system, local.Pos[3*i], local.Pos[3*i+1], local.Pos[3*i+2])
			if movedIDs[i] != want || movedAge[i] != float64(want)*0.5 {
				mismatches++
			}
		}
		c.SetResult([2]int{n, mismatches})
	})

	total, bad := 0, 0
	for r, v := range st.Values {
		pair := v.([2]int)
		fmt.Printf("rank %d: %d particles after resort\n", r, pair[0])
		total += pair[0]
		bad += pair[1]
	}
	fmt.Printf("total %d particles, %d payload mismatches\n", total, bad)
	if bad == 0 {
		fmt.Println("all application data followed its particles — resort indices work")
	}
}

func globalID(s *particle.System, x, y, z float64) int64 {
	for i := 0; i < s.N; i++ {
		if s.Pos[3*i] == x && s.Pos[3*i+1] == y && s.Pos[3*i+2] == z {
			return int64(i)
		}
	}
	return -1
}
