// md-silica: a particle dynamics simulation of a melting silica-like ionic
// system (the paper's §II-D example application), using redistribution
// method B — the solver's changed particle order and distribution is kept
// between time steps, and the velocities/accelerations are adapted with the
// library resort functions.
//
// Run with: go run ./examples/md-silica
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/mdsim"
	"repro/internal/particle"
	"repro/internal/vmpi"
)

// sample is one energy measurement along the trajectory.
type sample struct {
	Step     int
	Kin, Pot float64
}

func main() {
	const (
		ranks = 8
		steps = 20
		dt    = 0.01
	)
	system := particle.SilicaMelt(4096, 42.5, true, 42)
	fmt.Printf("md-silica: %d ions, %d ranks, %d steps of dt=%g, method B\n",
		system.N, ranks, steps, dt)

	st := vmpi.Run(vmpi.Config{Ranks: ranks}, func(c *vmpi.Comm) {
		local := particle.Distribute(c, system, particle.DistGrid, 7)
		handle, err := core.Init("p2nfft", c,
			core.WithBox(system.Box),
			core.WithAccuracy(1e-3),
			core.WithResort(true), // method B
		)
		if err != nil {
			log.Fatal(err)
		}
		defer handle.Destroy()

		sim := mdsim.New(c, handle, local, dt)
		if err := sim.Init(); err != nil {
			log.Fatal(err)
		}
		var series []sample
		k, u := sim.Energies()
		series = append(series, sample{0, k, u})
		for i := 1; i <= steps; i++ {
			if err := sim.Step(); err != nil {
				log.Fatal(err)
			}
			if i%5 == 0 {
				k, u := sim.Energies()
				series = append(series, sample{i, k, u})
			}
		}
		c.SetResult(series)
	})

	fmt.Printf("%6s %14s %14s %14s\n", "step", "kinetic", "potential", "total")
	for _, s := range st.Values[0].([]sample) {
		fmt.Printf("%6d %14.6f %14.6f %14.6f\n", s.Step, s.Kin, s.Pot, s.Kin+s.Pot)
	}
	fmt.Printf("virtual wall time: %.4g s\n", st.MaxClock())
}
