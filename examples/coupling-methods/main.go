// coupling-methods: compares the paper's two particle data redistribution
// methods head to head on the same workload. Method A restores the original
// particle order and distribution after every solver run; method B keeps
// the solver's changed order and resorts the application data instead
// (paper §III). The per-step redistribution cost of method A stays high,
// while method B collapses after the first step.
//
// Run with: go run ./examples/coupling-methods
package main

import (
	"fmt"
	"log"

	"repro/internal/api"
	"repro/internal/core"
	"repro/internal/mdsim"
	"repro/internal/particle"
	"repro/internal/vmpi"
)

// phases is the per-step redistribution breakdown of one run.
type phases struct {
	Sort, Second, Total []float64
}

func run(system *particle.System, solver string, resort bool) phases {
	const ranks = 8
	st := vmpi.Run(vmpi.Config{Ranks: ranks}, func(c *vmpi.Comm) {
		local := particle.Distribute(c, system, particle.DistRandom, 7)
		handle, err := core.Init(solver, c,
			core.WithBox(system.Box),
			core.WithAccuracy(1e-3),
			core.WithResort(resort),
		)
		if err != nil {
			log.Fatal(err)
		}
		defer handle.Destroy()
		sim := mdsim.New(c, handle, local, 0.01)

		var ph phases
		snap := func() (s, r, t float64) {
			second := c.PhaseTime(api.PhaseRestore)
			if resort {
				second = c.PhaseTime(api.PhaseResort) + c.PhaseTime(api.PhaseResortCreate)
			}
			return c.PhaseTime(api.PhaseSort), second,
				c.PhaseTime(api.PhaseTotal) + c.PhaseTime(api.PhaseResort)
		}
		s0, r0, t0 := snap()
		if err := sim.Init(); err != nil {
			log.Fatal(err)
		}
		for i := 0; i < 6; i++ {
			if err := sim.Step(); err != nil {
				log.Fatal(err)
			}
			s1, r1, t1 := snap()
			ph.Sort = append(ph.Sort, s1-s0)
			ph.Second = append(ph.Second, r1-r0)
			ph.Total = append(ph.Total, t1-t0)
			s0, r0, t0 = s1, r1, t1
		}
		c.SetResult(ph)
	})
	// Reduce max over ranks.
	var out phases
	for _, v := range st.Values {
		ph := v.(phases)
		if out.Sort == nil {
			out = phases{
				Sort:   make([]float64, len(ph.Sort)),
				Second: make([]float64, len(ph.Second)),
				Total:  make([]float64, len(ph.Total)),
			}
		}
		for i := range ph.Sort {
			out.Sort[i] = max(out.Sort[i], ph.Sort[i])
			out.Second[i] = max(out.Second[i], ph.Second[i])
			out.Total[i] = max(out.Total[i], ph.Total[i])
		}
	}
	return out
}

func main() {
	system := particle.SilicaMelt(4096, 42.5, true, 42)
	fmt.Printf("coupling-methods: %d ions, random initial distribution, 8 ranks\n\n", system.N)
	for _, solver := range []string{"fmm", "p2nfft"} {
		a := run(system, solver, false)
		b := run(system, solver, true)
		fmt.Printf("%s (virtual seconds per step):\n", solver)
		fmt.Printf("%4s  %32s  %32s\n", "", "method A (restore)", "method B (resort)")
		fmt.Printf("%4s  %10s %10s %10s  %10s %10s %10s\n",
			"step", "sort", "restore", "total", "sort", "resort", "total")
		for i := range a.Sort {
			fmt.Printf("%4d  %10.3e %10.3e %10.3e  %10.3e %10.3e %10.3e\n",
				i+1, a.Sort[i], a.Second[i], a.Total[i], b.Sort[i], b.Second[i], b.Total[i])
		}
		last := len(a.Total) - 1
		fmt.Printf("steady state: method B total = %.0f%% of method A\n\n",
			100*b.Total[last]/a.Total[last])
	}
}

func max(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
