// Package repro's top-level benchmarks map one-to-one onto the paper's
// evaluation artifacts (Figures 6–9; the paper has no numbered tables).
// Each benchmark executes the corresponding experiment at a reduced scale
// and reports, in addition to wall-clock time, the experiment's virtual
// runtimes as custom metrics (vsec/*), which are the quantities the figures
// plot. Run with:
//
//	go test -bench=. -benchmem
package repro

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/paperbench"
	"repro/internal/particle"
)

// benchConfig is a reduced-scale configuration for benchmarks.
func benchConfig() paperbench.Config {
	cfg := paperbench.DefaultConfig()
	cfg.Particles = 1728
	cfg.Ranks = 4
	cfg.Accuracy = 1e-2
	return cfg
}

// benchRun executes one benchmark configuration, failing the benchmark on a
// config error.
func benchRun(b *testing.B, cfg paperbench.Config) paperbench.Result {
	res, err := paperbench.Run(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkFig6 measures one solver run per (solver, initial distribution)
// configuration of Figure 6 under method A and reports the virtual total,
// sort, and restore times.
func BenchmarkFig6(b *testing.B) {
	for _, solver := range paperbench.Solvers() {
		for _, dist := range []particle.Dist{particle.DistSingle, particle.DistRandom, particle.DistGrid} {
			b.Run(solver+"/"+dist.String(), func(b *testing.B) {
				cfg := benchConfig()
				cfg.Steps = 0 // one solver run, no MD loop
				cfg.Solver, cfg.Dist = solver, dist
				var st paperbench.StepStat
				for i := 0; i < b.N; i++ {
					st = benchRun(b, cfg).Steps[0]
				}
				b.ReportMetric(st.Total, "vsec/total")
				b.ReportMetric(st.Sort, "vsec/sort")
				b.ReportMetric(st.Restore, "vsec/restore")
			})
		}
	}
}

// BenchmarkFig7 runs the short MD loop of Figure 7 (random initial
// distribution) for both methods and reports the steady-state per-step
// virtual times.
func BenchmarkFig7(b *testing.B) {
	for _, solver := range paperbench.Solvers() {
		for _, method := range []string{"A", "B"} {
			b.Run(solver+"/method"+method, func(b *testing.B) {
				cfg := benchConfig()
				cfg.Steps = 4
				cfg.Solver, cfg.Dist = solver, particle.DistRandom
				cfg.Resort = method == "B"
				var stats []paperbench.StepStat
				for i := 0; i < b.N; i++ {
					stats = benchRun(b, cfg).Steps
				}
				last := stats[len(stats)-1]
				b.ReportMetric(last.Total, "vsec/step-total")
				b.ReportMetric(last.Sort, "vsec/step-sort")
				b.ReportMetric(last.Restore+last.Resort, "vsec/step-redist2")
			})
		}
	}
}

// BenchmarkFig8 runs the drift experiment of Figure 8 (process-grid initial
// distribution, long simulation) at a reduced step count and reports the
// late-step redistribution cost.
func BenchmarkFig8(b *testing.B) {
	for _, solver := range paperbench.Solvers() {
		for _, method := range []string{"A", "B"} {
			b.Run(solver+"/method"+method, func(b *testing.B) {
				cfg := benchConfig()
				cfg.Steps = 12
				cfg.Thermal = 2.5
				cfg.Solver, cfg.Dist = solver, particle.DistGrid
				cfg.Resort = method == "B"
				var stats []paperbench.StepStat
				for i := 0; i < b.N; i++ {
					stats = benchRun(b, cfg).Steps
				}
				last := stats[len(stats)-1]
				redist := last.Sort + last.Restore + last.Resort
				b.ReportMetric(redist, "vsec/late-redist")
				b.ReportMetric(last.Total, "vsec/late-total")
				b.ReportMetric(100*redist/last.Total, "pct/redist-share")
			})
		}
	}
}

// BenchmarkFig9FMM sweeps the Figure 9 (left) configurations: FMM on the
// switched (JuRoPA-like) machine with methods A, B, and B plus the
// maximum-movement optimization.
func BenchmarkFig9FMM(b *testing.B) {
	benchFig9(b, "fmm", paperbench.JuRoPA())
}

// BenchmarkFig9P2NFFT sweeps the Figure 9 (right) configurations: P2NFFT on
// the torus (Juqueen-like) machine.
func BenchmarkFig9P2NFFT(b *testing.B) {
	benchFig9(b, "p2nfft", paperbench.Juqueen())
}

// BenchmarkHostParallelism pins GOMAXPROCS at 1 and at NumCPU and runs the
// same Figure-7-style MD loop at each setting, isolating the wall-clock
// effect of the intra-rank worker pool on the solver hot kernels. The
// vsec/step-total metric must be identical across the two settings (the
// determinism test asserts this bit-exactly); only wall-clock may differ.
func BenchmarkHostParallelism(b *testing.B) {
	orig := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(orig)
	for _, procs := range []int{1, runtime.NumCPU()} {
		for _, solver := range paperbench.Solvers() {
			b.Run(fmt.Sprintf("%s/procs%d", solver, procs), func(b *testing.B) {
				runtime.GOMAXPROCS(procs)
				defer runtime.GOMAXPROCS(orig)
				cfg := benchConfig()
				cfg.Steps = 4
				cfg.Solver, cfg.Dist = solver, particle.DistRandom
				cfg.Resort = true
				var stats []paperbench.StepStat
				for i := 0; i < b.N; i++ {
					stats = benchRun(b, cfg).Steps
				}
				b.ReportMetric(stats[len(stats)-1].Total, "vsec/step-total")
			})
		}
	}
}

func benchFig9(b *testing.B, solver string, machine paperbench.Machine) {
	for _, variant := range []struct {
		name          string
		resort, track bool
	}{
		{"methodA", false, false},
		{"methodB", true, false},
		{"methodB+move", true, true},
	} {
		b.Run(variant.name, func(b *testing.B) {
			cfg := benchConfig()
			cfg.Steps = 4
			cfg.Thermal = 2.5
			cfg.Machine = machine
			cfg.Solver, cfg.Dist = solver, particle.DistGrid
			cfg.Resort, cfg.TrackMovement = variant.resort, variant.track
			var total float64
			for i := 0; i < b.N; i++ {
				stats := benchRun(b, cfg).Steps
				total = 0
				for _, st := range stats {
					total += st.Total
				}
			}
			b.ReportMetric(total, "vsec/md-total")
		})
	}
}
